(* Effect-layer lint: every shared-memory access in the data-structure
   code must go through [Ascy_mem] so that the simulator sees it.

   Rule A — no raw concurrency primitives.  [Atomic.*], [Mutex.*],
   [Condition.*], [Domain.*], [Thread.*] and [Semaphore.*] are forbidden
   everywhere under lib/ except the whitelisted files that exist
   precisely to touch them (native backends, the simulator's
   domain-local slot, the parallel exploration frontier).
   A raw atomic is invisible to the simulated interleaving engine, the
   per-op profiler and the race detector, so it silently corrupts every
   analysis built on the effect layer.

   Rule B — no mutable-record stores in CSDS code.  A [t.field <- v] on
   a shared record bypasses [Mem.set]: under the simulator it commits
   without a scheduling point and without being counted or race-checked.
   Structure code must keep shared state in [Mem.r] cells.  Files whose
   mutable records are genuinely thread-local may opt out with the
   pragma [ascy-lint: allow-mutable-record] in a comment, stating why.
   Array stores [a.(i) <- v] are allowed: the backends wrap arrays of
   [Mem.r] cells, and plain arrays in the tree are per-thread scratch.

   Rule C — no k-CAS descriptor internals outside the backends.  The
   multi-word-CAS protocol (RDCSS sub-descriptors, status words,
   helping) lives entirely behind [Memory.S.kcas]; its identifiers all
   carry the [kdx_]/[Kdx_] prefix and are confined to the two backend
   files that implement the operation.  CSDS code that pattern-matches a
   descriptor or forges one would depend on one backend's encoding and
   silently diverge on the other, so any [kdx_]-prefixed token elsewhere
   under lib/ is a finding.

   The scanner lexes enough OCaml to skip comments (nested, with
   embedded strings), string literals (escapes and {|quoted|} forms)
   and character literals, so prose never triggers a finding.

   Usage: ascy_lint [-root DIR]   (default: current directory)
   Exits 1 if any finding is printed. *)

let rule_a_whitelist =
  [
    "lib/mem/backend/mem_native.ml";
    "lib/harness/native_run.ml";
    "lib/service/service_native.ml";
    (* the simulator's installed-simulation slot is domain-local
       (Domain.DLS) so parallel exploration can drive one simulation per
       domain; the parallel frontier itself spawns and coordinates those
       domains.  Neither is CSDS code — both sit under the effect
       layer, not on top of it. *)
    "lib/mem/core/sim.ml";
    "lib/sct/par_explore.ml";
  ]

let rule_b_dirs =
  [
    "lib/linkedlist";
    "lib/hashtable";
    "lib/skiplist";
    "lib/bst";
    "lib/locks";
    "lib/rcu";
    "lib/ssmem";
  ]

(* the only two files allowed to spell out k-CAS descriptor internals:
   the native RDCSS/k-CAS implementation and the simulator's atomic
   multi-line commit *)
let rule_c_whitelist = [ "lib/mem/backend/mem_native.ml"; "lib/mem/core/sim.ml" ]

let raw_modules =
  [ "Atomic"; "Mutex"; "Condition"; "Domain"; "Thread"; "Semaphore" ]

let pragma = "ascy-lint: allow-mutable-record"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Blank out comments, strings and char literals (newlines kept, so
   line numbers survive). *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let is_lower c = (c >= 'a' && c <= 'z') || c = '_' in
  (* [!i] is just past an opening quote: blank until past the closing one *)
  let skip_plain_string () =
    let fin = ref false in
    while (not !fin) && !i < n do
      (match src.[!i] with
      | '\\' when !i + 1 < n ->
          blank !i;
          incr i
      | '"' -> fin := true
      | _ -> ());
      blank !i;
      incr i
    done
  in
  (* at [{tag|]: blank through [|tag}]; returns false if not that form *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while !j < n && is_lower src.[!j] do
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let tag = String.sub src (!i + 1) (!j - !i - 1) in
      let close = "|" ^ tag ^ "}" in
      let stop = ref (!j + 1) in
      let found = ref false in
      while (not !found) && !stop + String.length close <= n do
        if String.sub src !stop (String.length close) = close then
          found := true
        else incr stop
      done;
      let last = if !found then !stop + String.length close else n in
      for k = !i to last - 1 do
        blank k
      done;
      i := last;
      true
    end
    else false
  in
  let skip_comment () =
    let depth = ref 1 in
    blank !i;
    blank (!i + 1);
    i := !i + 2;
    while !depth > 0 && !i < n do
      if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
        incr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
        decr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if src.[!i] = '"' then begin
        (* comments lex embedded string literals *)
        blank !i;
        incr i;
        skip_plain_string ()
      end
      else begin
        blank !i;
        incr i
      end
    done
  in
  (* a char literal, as opposed to a type variable ['a] *)
  let skip_char_literal () =
    if !i + 2 < n && src.[!i + 1] = '\\' then begin
      let close = ref (!i + 2) in
      while !close < n && !close <= !i + 5 && src.[!close] <> '\'' do
        incr close
      done;
      if !close < n && src.[!close] = '\'' then begin
        for k = !i to !close do
          blank k
        done;
        i := !close + 1;
        true
      end
      else false
    end
    else if !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\\' then begin
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3;
      true
    end
    else false
  in
  while !i < n do
    match src.[!i] with
    | '(' when !i + 1 < n && src.[!i + 1] = '*' -> skip_comment ()
    | '"' ->
        blank !i;
        incr i;
        skip_plain_string ()
    | '{' when skip_quoted_string () -> ()
    | '\'' when skip_char_literal () -> ()
    | _ -> incr i
  done;
  Bytes.to_string out

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Lines of [text], 1-indexed. *)
let iter_lines text f =
  let line = ref 1 in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        f !line (String.sub text !start (i - !start));
        incr line;
        start := i + 1
      end)
    text;
  if !start < String.length text then
    f !line (String.sub text !start (String.length text - !start))

(* Module qualifier ending at [pos] (exclusive), e.g. the [Stdlib] of
   [Stdlib.Atomic]. *)
let qualifier_before line pos =
  if pos = 0 || line.[pos - 1] <> '.' then None
  else begin
    let e = pos - 1 in
    let s = ref e in
    while !s > 0 && is_ident_char line.[!s - 1] do
      decr s
    done;
    if !s < e then Some (String.sub line !s (e - !s)) else None
  end

let findings = ref []
let report path line msg = findings := (path, line, msg) :: !findings

let check_rule_a path text =
  iter_lines text (fun lineno line ->
      List.iter
        (fun m ->
          let pat = m ^ "." in
          let plen = String.length pat in
          let len = String.length line in
          let pos = ref 0 in
          while !pos + plen <= len do
            if
              String.sub line !pos plen = pat
              && (!pos = 0 || not (is_ident_char line.[!pos - 1]))
              && (!pos + plen >= len || line.[!pos + plen] <> '.')
            then begin
              (* allow [Some_module.Domain.x] (a submodule), but not a
                 [Stdlib.]-qualified escape hatch *)
              let qualified_submodule =
                match qualifier_before line !pos with
                | Some q -> q <> "Stdlib"
                | None -> false
              in
              if not qualified_submodule then
                report path lineno
                  (Printf.sprintf
                     "raw %s.* use — shared-memory effects must go through \
                      Ascy_mem (Mem.get/set/cas), or the file belongs on the \
                      backend whitelist"
                     m)
            end;
            incr pos
          done)
        raw_modules)

let check_rule_b path text =
  iter_lines text (fun lineno line ->
      let len = String.length line in
      let pos = ref 0 in
      while !pos < len do
        if
          line.[!pos] = '.'
          && !pos + 1 < len
          && (let c = line.[!pos + 1] in
              (c >= 'a' && c <= 'z') || c = '_')
        then begin
          let j = ref (!pos + 1) in
          while !j < len && is_ident_char line.[!j] do
            incr j
          done;
          let k = ref !j in
          while !k < len && (line.[!k] = ' ' || line.[!k] = '\t') do
            incr k
          done;
          if !k + 1 < len && line.[!k] = '<' && line.[!k + 1] = '-' then
            report path lineno
              (Printf.sprintf
                 "mutable record store [.%s <-] bypasses Ascy_mem — keep \
                  shared state in Mem.r cells, or mark the file with (* %s — \
                  why it is thread-local *)"
                 (String.sub line (!pos + 1) (!j - !pos - 1))
                 pragma);
          pos := !j
        end
        else incr pos
      done)

let check_rule_c path text =
  iter_lines text (fun lineno line ->
      List.iter
        (fun pat ->
          let plen = String.length pat in
          let len = String.length line in
          let pos = ref 0 in
          while !pos + plen <= len do
            if
              String.sub line !pos plen = pat
              && (!pos = 0 || not (is_ident_char line.[!pos - 1]))
            then
              report path lineno
                (Printf.sprintf
                   "k-CAS descriptor internal [%s...] outside the backends — \
                    build multi-word updates from Mem.kcas_op/Mem.kcas only; \
                    descriptor encodings are private to %s"
                   pat
                   (String.concat " and " rule_c_whitelist));
            incr pos
          done)
        [ "kdx_"; "Kdx_" ])

let rec walk dir f =
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then walk path f
      else if Filename.check_suffix name ".ml" then f path)
    (Sys.readdir dir)

let () =
  let root = ref "." in
  (match Array.to_list Sys.argv with
  | _ :: "-root" :: d :: [] -> root := d
  | [ _ ] -> ()
  | _ ->
      prerr_endline "usage: ascy_lint [-root DIR]";
      exit 2);
  Sys.chdir !root;
  let files = ref [] in
  walk "lib" (fun p -> files := p :: !files);
  let files = List.sort compare !files in
  List.iter
    (fun path ->
      let src = read_file path in
      let text = strip src in
      if not (List.mem path rule_a_whitelist) then check_rule_a path text;
      let in_rule_b_scope =
        List.exists
          (fun d -> String.length path > String.length d
                    && String.sub path 0 (String.length d) = d
                    && path.[String.length d] = '/')
          rule_b_dirs
      in
      let has_pragma =
        (* the pragma lives in a comment, so look at the raw source *)
        let plen = String.length pragma in
        let n = String.length src in
        let found = ref false in
        for i = 0 to n - plen do
          if String.sub src i plen = pragma then found := true
        done;
        !found
      in
      if in_rule_b_scope && not has_pragma then check_rule_b path text;
      if not (List.mem path rule_c_whitelist) then check_rule_c path text)
    files;
  match List.rev !findings with
  | [] ->
      Printf.printf "ascy_lint: %d files clean\n" (List.length files);
      exit 0
  | fs ->
      List.iter
        (fun (path, line, msg) -> Printf.printf "%s:%d: %s\n" path line msg)
        fs;
      Printf.printf "ascy_lint: %d finding(s)\n" (List.length fs);
      exit 1
