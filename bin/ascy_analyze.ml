(* ASCY conformance sweep: observed vs declared ASCY1-4 vectors.

   Usage: ascy_analyze [-out DIR] [-model NAME] [NAME ...]

   For every registry algorithm (or just the NAMEs given), profile every
   operation of two deterministic simulator runs — a contended 4-thread
   run and a single-threaded run against the family's asynchronized
   baseline — and derive the observed ASCY compliance vector from the
   per-phase access profiles (Ascy_analysis.Ascy_check).

   Prints the Table-1-style declared-vs-observed table and writes the
   full evidence (per-entry measurements plus one offending op profile
   per violated pattern) to DIR/ASCY_CHECK.json.  Exits 1 on any
   observed/declared mismatch. *)

module Check = Ascy_analysis.Ascy_check
module Registry = Ascylib.Registry
module Ascy = Ascy_core.Ascy
module J = Ascy_util.Json

let () =
  let out_dir = ref "." in
  let model = ref Ascy_mem.Sim.default_model in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "-out" :: d :: rest ->
        out_dir := d;
        parse rest
    | "-model" :: m :: rest ->
        model := Ascy_mem.Sim.model_of_name m;
        parse rest
    | ("-h" | "-help" | "--help") :: _ ->
        print_endline "usage: ascy_analyze [-out DIR] [-model NAME] [NAME ...]";
        exit 0
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries =
    match !names with
    | [] -> Registry.all
    | names -> List.map Registry.by_name (List.rev names)
  in
  Printf.printf "ASCY conformance sweep: %d algorithms, %s%s\n\n" (List.length entries)
    "per-op phase profiles over contended (4T) + single-thread runs"
    (let mn = Ascy_mem.Sim.model_name_of !model in
     if mn = Ascy_mem.Sim.model_name_of Ascy_mem.Sim.default_model then ""
     else " [model " ^ mn ^ "]");
  Printf.printf "%-14s %-11s %-4s %-8s %-8s %7s %7s %6s %6s  %s\n" "name" "family" "sync"
    "declared" "observed" "ratio" "budget" "s.bad" "p.bad" "verdict";
  let reports = Check.sweep ~entries ~model:!model () in
  let failures = ref [] in
  List.iter
    (fun (r : Check.report) ->
      let e = r.Check.entry in
      let m = r.Check.measured in
      let ok = Check.matches r in
      Printf.printf "%-14s %-11s %-4s %-8s %-8s %7.2f %7.2f %6d %6d  %s\n%!" e.Registry.name
        (Ascy.family_to_string e.Registry.family)
        (Ascy.sync_to_string e.Registry.sync)
        (Ascy.to_string e.Registry.ascy)
        (Ascy.to_string r.Check.observed)
        m.Check.m_ratio m.Check.m_budget m.Check.m_search_bad m.Check.m_parse_bad
        (if ok then "ok" else "MISMATCH");
      if not ok then failures := r :: !failures)
    reports;
  let path = Filename.concat !out_dir "ASCY_CHECK.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:1 (Check.check_json reports));
      output_char oc '\n');
  Printf.printf "\n[evidence -> %s]\n" path;
  match !failures with
  | [] ->
      print_endline "every observed ASCY vector matches its declared one";
      exit 0
  | fs ->
      Printf.printf "%d mismatch(es):\n" (List.length fs);
      List.iter
        (fun (r : Check.report) ->
          let m = r.Check.measured in
          Printf.printf
            "  %s: declared %s observed %s (searches %d/%d bad, parses %d/%d bad, failed \
             %d/%d storing, success-waits %d/%d, ratio %.2f vs budget %.2f)\n"
            r.Check.entry.Registry.name
            (Ascy.to_string r.Check.entry.Registry.ascy)
            (Ascy.to_string r.Check.observed)
            m.Check.m_search_bad m.Check.m_searches m.Check.m_parse_bad m.Check.m_updates
            m.Check.m_failed_bad m.Check.m_failed m.Check.m_success_waits m.Check.m_successes
            m.Check.m_ratio m.Check.m_budget)
        fs;
      exit 1
