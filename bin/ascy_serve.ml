(* Sharded async KV service driver.

   Usage: ascy_serve [-out DIR] [-seed N] [-model NAME] [-scale smoke|full]
                     [-smoke] [-native] [-lin] [-no-check] [-resil] [SCENARIO ...]

   Runs the service scenario matrix (lib/service/scenario.ml) on the
   multicore simulator: client load generators multiplex thousands of
   sessions over a hash-routed cluster of per-shard sets, each shard
   fed by a bounded MPSC request queue and drained in batches by a
   worker thread.  Scenarios cover a zipf hot-key flash crowd,
   read-mostly vs churn-heavy mixes, deliberate shard skew, and rolling
   shard restarts that reuse the chaos engine's crash-stop fault plans
   (standbys take over the shard lease mid-run).

   Per scenario the driver reports per-shard throughput, sojourn and
   service-time latency percentiles (p50/p99/p999), fail-over counts,
   and the post-run validation + key-conservation verdict; all records
   are written through the structured-results sink to
   DIR/BENCH_service.json.  Every simulated metric derives from the
   virtual clock, so a given seed reproduces the file bit-for-bit
   (modulo the sink's generated_at_unix stamp).

   -native additionally runs each (restart-free) scenario on real OCaml 5
   domains via Mem_native as a smoke check of the same cluster code.
   -lin records shard 0's applied operations during the flash-crowd
   scenario and checks the history for linearizability.  Exit 1 on any
   oracle violation or failed spot-check.

   -resil switches to the resilience fault matrix instead: every
   Service_run.Fault_matrix plan (none / drop / dup / delay /
   slow-shard) crossed with a restart-free scenario and the
   rolling-restart scenario (so message faults compose with F_crash
   fail-overs), all run under the resilient request layer with the
   delivery oracles (at-most-once, no-lost-ack, bounded staleness)
   armed on top of conservation.  Each cell is executed twice and the
   serialized results compared byte-for-byte — the inline replay
   check.  Results go to DIR/RESIL_matrix.json (schema v1) plus the
   usual BENCH_service.json records; exit 1 on any oracle violation
   or replay divergence. *)

module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module H = Ascy_util.Histogram
module J = Ascy_util.Json
module Report = Ascy_harness.Report
module Results = Ascy_harness.Results
module Scenario = Ascy_service.Scenario
module Service_run = Ascy_service.Service_run
module Service_native = Ascy_service.Service_native
module Service_results = Ascy_service.Service_results
module Resilience = Ascy_service.Resilience

let p50_99_999 h =
  if H.count h = 0 then ("-", "-", "-")
  else
    ( Report.f1 (H.percentile h 50.0),
      Report.f1 (H.percentile h 99.0),
      Report.f1 (H.percentile h 99.9) )

let () =
  let seed = ref 1 in
  let model = ref "mesi" in
  let scale = ref Scenario.Smoke in
  let native = ref false in
  let lin = ref false in
  let check = ref true in
  let resil = ref false in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "-out" :: d :: rest ->
        Unix.putenv "ASCY_BENCH_OUT" d;
        parse rest
    | "-seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | "-model" :: m :: rest ->
        model := m;
        parse rest
    | "-scale" :: s :: rest ->
        (scale :=
           match s with
           | "smoke" -> Scenario.Smoke
           | "full" -> Scenario.Full
           | s -> invalid_arg (Printf.sprintf "unknown scale %S (smoke|full)" s));
        parse rest
    | "-smoke" :: rest ->
        scale := Scenario.Smoke;
        parse rest
    | "-native" :: rest ->
        native := true;
        parse rest
    | "-lin" :: rest ->
        lin := true;
        parse rest
    | "-no-check" :: rest ->
        check := false;
        parse rest
    | "-resil" :: rest ->
        resil := true;
        parse rest
    | ("-h" | "-help" | "--help") :: _ ->
        print_endline
          "usage: ascy_serve [-out DIR] [-seed N] [-model NAME] [-scale smoke|full] [-smoke] \
           [-native] [-lin] [-no-check] [-resil] [SCENARIO ...]";
        Printf.printf "scenarios: %s\n"
          (String.concat ", "
             (List.map (fun sc -> sc.Scenario.name) (Scenario.matrix Scenario.Smoke)));
        exit 0
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scenarios =
    match !names with
    | [] -> Scenario.matrix !scale
    | names -> List.map (Scenario.by_name !scale) (List.rev names)
  in
  let model_v = Sim.model_of_name !model in
  if !resil then begin
    (* Resilience fault matrix: every queue-layer fault plan crossed with
       a restart-free scenario and the rolling-restart one (message
       faults during F_crash fail-overs), resilient layer on, delivery
       oracles armed, each cell executed twice for the inline bit-for-bit
       replay check. *)
    let platform = P.xeon20 in
    let scenarios =
      match !names with
      | [] ->
          [ Scenario.by_name !scale "read-mostly"; Scenario.by_name !scale "rolling-restart" ]
      | names -> List.map (Scenario.by_name !scale) (List.rev names)
    in
    let rcfg = Resilience.default in
    let failed = ref false in
    let entries = ref [] in
    let rows = ref [] in
    Printf.printf "resilience fault matrix: %d scenario(s) x %d fault kind(s), scale %s, seed %d, model %s\n\n"
      (List.length scenarios)
      (List.length Service_run.Fault_matrix.names)
      (Scenario.scale_name !scale) !seed !model;
    Results.with_sink "service" (fun () ->
        List.iter
          (fun sc ->
            List.iter
              (fun fk ->
                let fault_plan ~decisions =
                  Service_run.Fault_matrix.plan fk sc ~platform ~decisions
                in
                let exec () =
                  Service_run.run ~seed:!seed ~model:model_v ~platform ~check:!check
                    ~resil:rcfg ~fault_plan sc
                in
                let label = Printf.sprintf "%s-%s-resil" sc.Scenario.name fk in
                let r = exec () in
                let replay_identical =
                  J.to_string (Service_results.of_run ~label r)
                  = J.to_string (Service_results.of_run ~label (exec ()))
                in
                Results.record (Service_results.of_run ~label r);
                entries :=
                  Service_results.resil_entry ~fault_kind:fk ~replay_identical r :: !entries;
                let verdict =
                  match (r.Service_run.violation, replay_identical) with
                  | Some v, _ ->
                      failed := true;
                      "VIOLATION: " ^ v
                  | None, false ->
                      failed := true;
                      "REPLAY-DIVERGED"
                  | None, true -> "ok"
                in
                let m = r.Service_run.rmetrics in
                rows :=
                  [
                    sc.Scenario.name;
                    fk;
                    string_of_int r.Service_run.ops_applied;
                    string_of_int m.Resilience.m_retries;
                    string_of_int m.Resilience.m_sheds;
                    string_of_int m.Resilience.m_breaker_trips;
                    Printf.sprintf "%d/%d" m.Resilience.m_hedge_wins m.Resilience.m_hedges;
                    string_of_int m.Resilience.m_dup_suppressed;
                    string_of_int m.Resilience.m_deadline_miss;
                    string_of_int r.Service_run.takeovers;
                    verdict;
                  ]
                  :: !rows)
              Service_run.Fault_matrix.names)
          scenarios);
    Report.table ~title:"resilience fault matrix (delivery oracles + replay armed)"
      [
        "scenario"; "fault"; "applied"; "retries"; "sheds"; "trips"; "hedge w/t"; "dedup";
        "misses"; "takeovers"; "verdict";
      ]
      (List.rev !rows);
    let path =
      Service_results.write_resil_matrix
        (Service_results.resil_matrix ~seed:!seed ~model:!model
           ~scale:(Scenario.scale_name !scale) (List.rev !entries))
    in
    Printf.printf "wrote %s\n" path;
    if !failed then begin
      print_endline "FAIL: resilience oracle violation or replay divergence";
      exit 1
    end;
    print_endline "resilience fault matrix clean";
    exit 0
  end;
  let failed = ref false in
  Printf.printf "sharded KV service: %d scenario(s), scale %s, seed %d, model %s%s\n\n"
    (List.length scenarios) (Scenario.scale_name !scale) !seed !model
    (if !native then " (+native smoke)" else "");
  Results.with_sink "service" (fun () ->
      let rows =
        List.map
          (fun sc ->
            let spotcheck = !lin && sc.Scenario.name = "flash-crowd" in
            let r = Service_run.run ~seed:!seed ~model:model_v ~check:!check ~spotcheck sc in
            Results.record
              (Service_results.of_run
                 ~label:(Printf.sprintf "%s-%s" sc.Scenario.name (Scenario.scale_name !scale))
                 r);
            let verdict =
              match (r.Service_run.violation, r.Service_run.linearizable) with
              | Some v, _ ->
                  failed := true;
                  "VIOLATION: " ^ v
              | None, Some false ->
                  failed := true;
                  "NOT-LINEARIZABLE"
              | None, Some true -> "ok+lin"
              | None, None -> if r.Service_run.checked then "ok" else "unchecked"
            in
            let p50, p99, p999 = p50_99_999 r.Service_run.sojourn in
            [
              sc.Scenario.name;
              r.Service_run.algorithm;
              string_of_int r.Service_run.ops_applied;
              Report.f3 r.Service_run.throughput_mops;
              p50;
              p99;
              p999;
              string_of_int r.Service_run.enq_waits;
              string_of_int r.Service_run.takeovers;
              verdict;
            ])
          scenarios
      in
      Report.table ~title:"service scenarios (simulator)"
        [
          "scenario"; "algo"; "applied"; "mops"; "p50ns"; "p99ns"; "p999ns"; "waits"; "takeovers";
          "verdict";
        ]
        rows;
      if !native then begin
        let rows =
          List.filter_map
            (fun sc ->
              if sc.Scenario.restarts then None
              else begin
                let r = Service_native.run ~seed:!seed sc in
                Results.record
                  (Service_results.of_native_run
                     ~label:
                       (Printf.sprintf "%s-%s-native" sc.Scenario.name
                          (Scenario.scale_name !scale))
                     r);
                let verdict =
                  match r.Service_native.violation with
                  | Some v ->
                      failed := true;
                      "VIOLATION: " ^ v
                  | None -> "ok"
                in
                Some
                  [
                    sc.Scenario.name;
                    r.Service_native.algorithm;
                    string_of_int r.Service_native.ops_applied;
                    Report.f3 r.Service_native.throughput_mops;
                    string_of_int r.Service_native.enq_waits;
                    verdict;
                  ]
              end)
            scenarios
        in
        if rows <> [] then
          Report.table ~title:"service scenarios (native domains, wall-clock)"
            [ "scenario"; "algo"; "applied"; "mops"; "waits"; "verdict" ]
            rows
      end);
  if !failed then begin
    print_endline "FAIL: service oracle violation";
    exit 1
  end;
  print_endline "all service scenarios clean"
