(* Replay a serialized SCT or chaos counterexample bit-for-bit.

   Usage: sct_replay FILE.json [TIMES]

   Loads a schedule file written by Ascy_harness.Sct_run.save_finding
   (schema v1) or a FAULT_*.json chaos counterexample written by
   Ascy_harness.Fault_run.save_finding (schema v2: schedule prefix plus
   fault plan), rebuilds the exact workload (algorithm, platform, thread
   scripts, prefill), replays it TIMES times (default 2), and checks
   every replay reproduces the identical violation.  Exit status: 0 when
   the violation reproduces deterministically, 1 when it does not (or the
   file is malformed). *)

let verdict expected results =
  let ok =
    match results with
    | [] -> false
    | first :: rest ->
        first <> None
        && List.for_all (fun r -> r = first) rest
        && match expected with Some v -> first = Some v | None -> true
  in
  if ok then begin
    print_endline "verdict: violation reproduces bit-for-bit";
    exit 0
  end
  else begin
    print_endline "verdict: NOT reproducible";
    exit 1
  end

let print_replays expected results =
  (match expected with
  | Some v -> Printf.printf "recorded violation: %s\n" v
  | None -> print_endline "recorded violation: (none stored)");
  List.iteri
    (fun i r ->
      Printf.printf "replay %d: %s\n" (i + 1)
        (match r with Some v -> v | None -> "no violation (!)"))
    results

let replay_fault path times =
  match Ascy_harness.Fault_run.replay_file ~times path with
  | exception Ascy_sct.Replay.Bad_schedule msg ->
      Printf.eprintf "error: bad schedule file %s: %s\n" path msg;
      exit 1
  | spec, faults, expected, results ->
      Printf.printf "chaos counterexample: algorithm %s on %s, %d threads\n"
        spec.Ascy_harness.Sct_run.name
        spec.Ascy_harness.Sct_run.platform.Ascy_platform.Platform.name
        spec.Ascy_harness.Sct_run.nthreads;
      Printf.printf "fault plan: %s\n" (Ascy_harness.Fault_run.plan_str faults);
      print_replays expected results;
      verdict expected results

let () =
  let path, times =
    match Sys.argv with
    | [| _; path |] -> (path, 2)
    | [| _; path; n |] -> (path, int_of_string n)
    | _ ->
        prerr_endline "usage: sct_replay FILE.json [TIMES]";
        exit 2
  in
  (* dispatch on schema: a fault plan means a chaos (Fault_run) file *)
  (match Ascy_sct.Replay.load path with
  | exception Ascy_sct.Replay.Bad_schedule msg ->
      Printf.eprintf "error: bad schedule file %s: %s\n" path msg;
      exit 1
  | _, faults, meta ->
      (* replays re-arm the recorded coherence model; say so when it is
         not the default *)
      let model = Ascy_harness.Engine.model_of_meta meta in
      let mn = Ascy_mem.Sim.model_name_of model in
      if mn <> Ascy_mem.Sim.model_name_of Ascy_mem.Sim.default_model then
        Printf.printf "coherence model: %s (recorded in replay file)\n" mn;
      if faults <> [] then replay_fault path times);
  match Ascy_harness.Sct_run.replay_file ~times path with
  | exception Ascy_sct.Replay.Bad_schedule msg ->
      Printf.eprintf "error: bad schedule file %s: %s\n" path msg;
      exit 1
  | spec, expected, results ->
      Printf.printf "algorithm %s on %s, %d threads, %d scripted ops\n"
        spec.Ascy_harness.Sct_run.name spec.Ascy_harness.Sct_run.platform.Ascy_platform.Platform.name
        spec.Ascy_harness.Sct_run.nthreads
        (Array.fold_left (fun acc ops -> acc + Array.length ops) 0 spec.Ascy_harness.Sct_run.script);
      print_replays expected results;
      verdict expected results
