(* Chaos sweep: observed vs declared progress guarantees under faults.

   Usage: ascy_chaos [-out DIR] [-watchdog N] [-model NAME] [NAME ...]

   For every registry algorithm (or just the NAMEs given), crash-stop a
   victim thread after each of its store/CAS commit points in turn
   (crash-holding-lock for the lock-based designs, crash-mid-CAS for the
   lock-free ones), then stall it for a finite window, and classify the
   observed behavior with Ascy_harness.Fault_run's progress oracles:

   - declared non-blocking: no crash placement may wedge the survivors,
     no completed run may corrupt the structure (validation + per-key
     conservation with ±1 slack on the corpse's in-flight key);
   - declared blocking: at least one lock-holder crash must actually
     wedge the survivors (otherwise the declaration itself is wrong);
   - everyone: a finite stall must be survived with exact oracles.

   Prints the declared-vs-observed table.  On any mismatch, writes a
   replayable FAULT_<name>.json counterexample (Replay schema v2,
   reproducible with sct_replay) into DIR (default ".") and exits 1. *)

module Fault = Ascy_harness.Fault_run
module Registry = Ascylib.Registry
module Ascy = Ascy_core.Ascy

let () =
  let out_dir = ref "." in
  let watchdog = ref 2_000 in
  let model = ref Ascy_mem.Sim.default_model in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "-out" :: d :: rest ->
        out_dir := d;
        parse rest
    | "-watchdog" :: n :: rest ->
        watchdog := int_of_string n;
        parse rest
    | "-model" :: m :: rest ->
        model := Ascy_mem.Sim.model_of_name m;
        parse rest
    | ("-h" | "-help" | "--help") :: _ ->
        print_endline "usage: ascy_chaos [-out DIR] [-watchdog N] [-model NAME] [NAME ...]";
        exit 0
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries =
    match !names with
    | [] -> Registry.all
    | names -> List.map Registry.by_name (List.rev names)
  in
  Printf.printf "chaos sweep: %d algorithms, %s%s\n\n" (List.length entries)
    "crash-after-each-commit + finite-stall fault plans"
    (let mn = Ascy_mem.Sim.model_name_of !model in
     if mn = Ascy_mem.Sim.model_name_of Ascy_mem.Sim.default_model then ""
     else " [model " ^ mn ^ "]");
  Printf.printf "%-14s %-11s %-4s %-12s %-12s %6s %6s  %s\n" "name" "family" "sync" "declared"
    "observed" "probes" "stall" "verdict";
  let failures = ref [] in
  List.iter
    (fun (entry : Registry.entry) ->
      let r = Fault.classify ~watchdog:!watchdog ~model:!model entry in
      let ok = Fault.matches r in
      Printf.printf "%-14s %-11s %-4s %-12s %-12s %6d %6s  %s\n%!" entry.Registry.name
        (Ascy.family_to_string entry.Registry.family)
        (Ascy.sync_to_string entry.Registry.sync)
        (Ascy.progress_to_string entry.Registry.progress)
        (Ascy.progress_to_string r.Fault.observed)
        r.Fault.crash_probes
        (if r.Fault.stall_ok then "ok" else "FAIL")
        (if ok then "ok" else "MISMATCH");
      if not ok then failures := r :: !failures)
    entries;
  match !failures with
  | [] ->
      print_endline "\nevery observed classification matches its declared guarantee";
      exit 0
  | fs ->
      Printf.printf "\n%d mismatch(es):\n" (List.length fs);
      let wrote = ref false in
      List.iter
        (fun (r : Fault.report) ->
          let name = r.Fault.entry.Registry.name in
          (* pick a concrete failing run to serialize, when one exists *)
          let finding =
            match (r.Fault.witness, r.Fault.oracle_failures) with
            | Some (faults, v), _ -> Some (faults, v, false, !watchdog)
            | None, (faults, v) :: _ -> Some (faults, v, true, !watchdog)
            | None, [] ->
                if not r.Fault.stall_ok then
                  match r.Fault.stall_violation with
                  | Some v -> Some (r.Fault.stall_plan, v, true, !watchdog + 1_000)
                  | None -> None
                else None
          in
          match finding with
          | None ->
              Printf.printf
                "  %s: declared %s but no crash placement wedged the survivors (%d probes) — \
                 nothing concrete to serialize\n"
                name
                (Ascy.progress_to_string r.Fault.entry.Registry.progress)
                r.Fault.crash_probes
          | Some (faults, violation, check, wd) ->
              let path = Filename.concat !out_dir ("FAULT_" ^ name ^ ".json") in
              Fault.save_finding ~path ~watchdog:wd ~check ~model:!model
                (Fault.chaos_spec name) ~faults ~violation;
              wrote := true;
              Printf.printf "  %s: %s\n    plan: %s\n    counterexample: %s\n" name violation
                (Fault.plan_str faults) path;
              (* paranoia: a counterexample that does not reproduce is noise *)
              let _, _, expected, results = Fault.replay_file ~times:2 path in
              let reproduces =
                match (expected, results) with
                | Some v, [ Some a; Some b ] -> a = v && b = v
                | _ -> false
              in
              Printf.printf "    replay: %s\n"
                (if reproduces then "reproduces bit-for-bit" else "DOES NOT REPRODUCE"))
        fs;
      ignore !wrote;
      exit 1
