(* Policy × domain exploration matrix over the algorithm registry.

   Usage: ascy_explore [-out DIR] [-domains LIST] [-policy LIST]
                       [-budget N] [-seed N] [-pct-depth N] [-swarm-seeds N]
                       [-model NAME] [-smoke] [-threshold X] [-soft] [NAME ...]

   For every algorithm (the full registry, the -smoke subset, or the
   NAMEs given), run the 3-thread adversarial script of ascy_perf /
   examples/schedule_fuzz under every requested exploration policy
   (exhaustive DPOR, uniform random, PCT, swarm) at every requested
   domain count, and write one EXPLORE_matrix.json row per cell:
   schedules, steps, wall-clock, schedules/sec, the completeness flag,
   and the verdict.

   Cross-checks, all within one invocation:
   - for a fixed (algorithm, policy), verdicts must be identical at
     every domain count, and any counterexample file must be
     byte-identical across domain counts (the canonical-finding
     contract of Ascy_sct.Par_explore) — a difference is a hard fail;
   - a randomized policy reporting a violation on an algorithm the
     exhaustive baseline proves clean (within bounds) is a hard fail;
     a randomized policy *missing* a violation exhaustive finds is the
     expected probabilistic shortfall and only warns;
   - the exhaustive schedules/sec at the highest domain count vs one
     domain gives the parallel speedup; below -threshold (default 2.0)
     it fails the run — soften to a warning with -soft on machines
     without spare cores (this container reports nproc=1).

   Counterexamples are written as EXPLORE_CE_<algo>_<policy>.json,
   replayable with sct_replay like any other finding. *)

module Sct = Ascy_harness.Sct_run
module Explorer = Ascy_sct.Explorer
module Registry = Ascylib.Registry
module Sim = Ascy_mem.Sim
module J = Ascy_util.Json

let spec name =
  Sct.mk_spec ~name ~initial:[ 2 ]
    ~script:
      [|
        [| (Sct.Insert, 1); (Sct.Remove, 2); (Sct.Insert, 3) |];
        [| (Sct.Insert, 1); (Sct.Insert, 2); (Sct.Remove, 3) |];
        [| (Sct.Remove, 1); (Sct.Insert, 2) |];
      |]
    ()

(* A quick correct-algorithms cross-section: two per family plus both
   lock-free hash tables, small enough for CI yet exercising every
   structure shape.  Correctness matters: the strict randomized-vs-
   exhaustive verdict check assumes the exhaustive verdict is "clean". *)
let smoke_set =
  [
    "ll-lazy"; "ll-harris"; "ht-java"; "ht-clht-lf";
    "sl-herlihy"; "sl-fraser"; "bst-tk"; "bst-howley";
  ]

let parse_int_list s = List.map int_of_string (String.split_on_char ',' s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type cell = {
  c_name : string;
  c_policy : Explorer.policy;
  c_domains : int;
  c_report : Explorer.report;
  c_seconds : float;
  c_violation : string option;
  c_ce : string option;  (** counterexample file path, if a finding was saved *)
}

let () =
  let out_dir = ref "." in
  let domain_counts = ref [ 1 ] in
  let policy_names = ref [ "exhaustive"; "random"; "pct"; "swarm" ] in
  let budget = ref 64 in
  let seed = ref 1 in
  let pct_depth = ref 3 in
  let swarm_seeds = ref 4 in
  let model_name = ref "flat" in
  let threshold = ref 2.0 in
  let soft = ref false in
  let smoke = ref false in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "-out" :: d :: rest -> out_dir := d; parse rest
    | "-domains" :: l :: rest -> domain_counts := parse_int_list l; parse rest
    | "-policy" :: l :: rest -> policy_names := String.split_on_char ',' l; parse rest
    | "-budget" :: n :: rest -> budget := int_of_string n; parse rest
    | "-seed" :: n :: rest -> seed := int_of_string n; parse rest
    | "-pct-depth" :: n :: rest -> pct_depth := int_of_string n; parse rest
    | "-swarm-seeds" :: n :: rest -> swarm_seeds := int_of_string n; parse rest
    | "-model" :: m :: rest -> model_name := m; parse rest
    | "-threshold" :: x :: rest -> threshold := float_of_string x; parse rest
    | "-soft" :: rest -> soft := true; parse rest
    | "-smoke" :: rest -> smoke := true; parse rest
    | ("-h" | "-help" | "--help") :: _ ->
        print_endline
          "usage: ascy_explore [-out DIR] [-domains LIST] [-policy LIST] [-budget N]\n\
          \                    [-seed N] [-pct-depth N] [-swarm-seeds N] [-model NAME]\n\
          \                    [-smoke] [-threshold X] [-soft] [NAME ...]";
        exit 0
    | name :: rest -> names := name :: !names; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !out_dir) then Sys.mkdir !out_dir 0o755;
  let entries =
    match (!names, !smoke) with
    | [], false -> Registry.all
    | [], true -> List.map Registry.by_name smoke_set
    | names, _ -> List.map Registry.by_name (List.rev names)
  in
  let model = Sim.model_of_name !model_name in
  let policy_of_name = function
    | "exhaustive" -> Explorer.Exhaustive
    | "random" -> Explorer.Random { seed = !seed; schedules = !budget }
    | "pct" -> Explorer.Pct { seed = !seed; depth = !pct_depth; schedules = !budget }
    | "swarm" ->
        Explorer.Swarm
          {
            seeds = List.init !swarm_seeds (fun i -> !seed + i);
            schedules = max 1 (!budget / !swarm_seeds);
          }
    | p -> failwith ("unknown policy: " ^ p)
  in
  let policies = List.map policy_of_name !policy_names in
  let domain_counts = List.sort_uniq compare !domain_counts in
  Printf.printf
    "exploration matrix: %d algorithms x %d policies x domains {%s}, model %s, budget %d\n\n"
    (List.length entries) (List.length policies)
    (String.concat "," (List.map string_of_int domain_counts))
    !model_name !budget;
  Printf.printf "%-14s %-10s %7s %9s %9s %8s %10s  %s\n" "name" "policy" "domains"
    "schedules" "steps" "seconds" "scheds/s" "verdict";
  let hard_fails = ref [] in
  let warnings = ref [] in
  let cells =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.concat_map
          (fun policy ->
            List.map
              (fun domains ->
                let t0 = Unix.gettimeofday () in
                let finding, report =
                  Sct.explore ~mode:Explorer.Dpor ~model ~policy ~domains (spec e.Registry.name)
                in
                let seconds = Unix.gettimeofday () -. t0 in
                let violation =
                  Option.map (fun (f : Sct.finding) -> f.Sct.violation) finding
                in
                let ce =
                  match finding with
                  | None -> None
                  | Some f ->
                      (* first domain count writes the canonical file;
                         later ones write beside it and must match bytes *)
                      let base =
                        Printf.sprintf "EXPLORE_CE_%s_%s.json" e.Registry.name
                          (Explorer.policy_name policy)
                      in
                      let canonical = Filename.concat !out_dir base in
                      let path =
                        if Sys.file_exists canonical then canonical ^ ".check" else canonical
                      in
                      Sct.save_finding ~model ~path (spec e.Registry.name) f;
                      if path <> canonical then begin
                        if read_file path <> read_file canonical then
                          hard_fails :=
                            Printf.sprintf
                              "%s/%s: counterexample differs at %d domains (vs %s)"
                              e.Registry.name (Explorer.policy_name policy) domains base
                            :: !hard_fails;
                        Sys.remove path
                      end;
                      Some base
                in
                Printf.printf "%-14s %-10s %7d %9d %9d %8.2f %10.0f  %s\n%!" e.Registry.name
                  (Explorer.policy_name policy) domains report.Explorer.schedules
                  report.Explorer.steps seconds
                  (if seconds > 0. then float_of_int report.Explorer.schedules /. seconds
                   else 0.)
                  (match violation with Some v -> "FAIL: " ^ v | None -> "ok");
                {
                  c_name = e.Registry.name;
                  c_policy = policy;
                  c_domains = domains;
                  c_report = report;
                  c_seconds = seconds;
                  c_violation = violation;
                  c_ce = ce;
                })
              domain_counts)
          policies)
      entries
  in
  (* verdicts must agree across domain counts for a fixed (algo, policy) *)
  List.iter
    (fun c ->
      List.iter
        (fun c' ->
          if
            c.c_name = c'.c_name && c.c_policy = c'.c_policy
            && c.c_domains < c'.c_domains
            && c.c_violation <> c'.c_violation
          then
            hard_fails :=
              Printf.sprintf "%s/%s: verdict differs between %d and %d domains" c.c_name
                (Explorer.policy_name c.c_policy) c.c_domains c'.c_domains
              :: !hard_fails)
        cells)
    cells;
  (* randomized policies vs the exhaustive baseline (first domain count) *)
  List.iter
    (fun (e : Registry.entry) ->
      match
        List.find_opt
          (fun c -> c.c_name = e.Registry.name && c.c_policy = Explorer.Exhaustive)
          cells
      with
      | None -> ()
      | Some base ->
          List.iter
            (fun c ->
              if c.c_name = e.Registry.name && c.c_policy <> Explorer.Exhaustive then
                match (base.c_violation, c.c_violation) with
                | None, Some v ->
                    hard_fails :=
                      Printf.sprintf
                        "%s: %s reports a violation exhaustive proved in-bounds clean: %s"
                        c.c_name (Explorer.policy_name c.c_policy) v
                      :: !hard_fails
                | Some _, None ->
                    warnings :=
                      Printf.sprintf
                        "%s: %s missed the violation exhaustive finds (probabilistic shortfall)"
                        c.c_name (Explorer.policy_name c.c_policy)
                      :: !warnings
                | _ -> ())
            cells)
    entries;
  (* exhaustive parallel speedup: schedules/sec at max domains vs 1 *)
  let rate domains =
    let picked =
      List.filter
        (fun c -> c.c_policy = Explorer.Exhaustive && c.c_domains = domains)
        cells
    in
    let scheds =
      List.fold_left (fun a c -> a + c.c_report.Explorer.schedules) 0 picked
    in
    let secs = List.fold_left (fun a c -> a +. c.c_seconds) 0. picked in
    if secs > 0. && picked <> [] then Some (float_of_int scheds /. secs) else None
  in
  let speedup =
    match (List.mem Explorer.Exhaustive policies, domain_counts) with
    | true, _ :: _ :: _ -> (
        let dmax = List.fold_left max 1 domain_counts in
        match (rate 1, rate dmax) with
        | Some r1, Some rn when List.mem 1 domain_counts -> Some (dmax, rn /. r1)
        | _ -> None)
    | _ -> None
  in
  let rows =
    List.map
      (fun c ->
        match
          Sct.report_json ~policy:c.c_policy ~domains:c.c_domains ?violation:c.c_violation
            c.c_report
        with
        | J.Obj fields ->
            J.Obj
              (("name", J.String c.c_name) :: fields
              @ [
                  ("seconds", J.Float c.c_seconds);
                  ( "schedules_per_sec",
                    J.Float
                      (if c.c_seconds > 0. then
                         float_of_int c.c_report.Explorer.schedules /. c.c_seconds
                       else 0.) );
                  ( "counterexample",
                    match c.c_ce with Some p -> J.String p | None -> J.Null );
                ])
        | _ -> assert false)
      cells
  in
  let json =
    J.Obj
      [
        ("schema_version", J.Int 1);
        ("model", J.String !model_name);
        ("budget", J.Int !budget);
        ("seed", J.Int !seed);
        ("algorithms", J.Int (List.length entries));
        ("policies", J.List (List.map (fun p -> J.String (Explorer.policy_name p)) policies));
        ("domain_counts", J.List (List.map (fun d -> J.Int d) domain_counts));
        ( "speedup",
          match speedup with
          | Some (dmax, s) ->
              J.Obj [ ("domains", J.Int dmax); ("schedules_per_sec_ratio", J.Float s) ]
          | None -> J.Null );
        ("hard_fails", J.List (List.map (fun s -> J.String s) (List.rev !hard_fails)));
        ("warnings", J.List (List.map (fun s -> J.String s) (List.rev !warnings)));
        ("matrix", J.List rows);
      ]
  in
  let path = Filename.concat !out_dir "EXPLORE_matrix.json" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:1 json);
      output_char oc '\n');
  Printf.printf "\n[matrix -> %s]\n" path;
  List.iter (Printf.printf "warning: %s\n") (List.rev !warnings);
  (match speedup with
  | Some (dmax, s) ->
      Printf.printf "exhaustive schedules/sec at %d domains: %.2fx of 1 domain (threshold %.2fx)\n"
        dmax s !threshold;
      if s < !threshold then
        if !soft then
          Printf.printf "warning: speedup %.2fx below threshold %.2fx (soft mode)\n" s !threshold
        else begin
          Printf.printf "FAIL: speedup %.2fx below threshold %.2fx\n" s !threshold;
          hard_fails := Printf.sprintf "speedup %.2fx below threshold %.2fx" s !threshold
                        :: !hard_fails
        end
  | None -> ());
  match List.rev !hard_fails with
  | [] -> print_endline "matrix consistent: verdicts and counterexamples agree across the board"
  | fails ->
      List.iter (Printf.printf "FAIL: %s\n") fails;
      exit 1
