(* Ablation (§4 "hardware considerations" + experimental settings): the
   SSMEM garbage threshold.  The paper uses 512 everywhere except the
   Tilera, where large garbage volumes thrash the tiny TLBs and the
   threshold is lowered to 128.  We sweep the threshold on the Tilera
   model with an update-heavy lazy list and report throughput plus
   reclamation statistics. *)

open Ascylib
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let run () =
  Bench_config.section "Ablation — SSMEM GC threshold (Tilera model, ll-lazy, 50% updates)";
  let entry = Registry.by_name "ll-lazy" in
  let wl = W.make ~initial:(Bench_config.list_elems 1024) ~update_pct:50 () in
  let rows =
    List.map
      (fun threshold ->
        Ascy_core.Config.ssmem_threshold := threshold;
        let r =
          Fun.protect
            ~finally:(fun () -> Ascy_core.Config.ssmem_threshold := 512)
            (fun () ->
              R.run ~model:Bench_config.model entry.Registry.maker ~platform:Ascy_platform.Platform.tilera ~nthreads:20
                ~workload:wl ~ops_per_thread:(4 * Bench_config.ops_per_thread) ())
        in
        Res.record_sim ~label:(Printf.sprintf "gc-threshold-%d" threshold) r;
        [
          string_of_int threshold;
          Rep.f2 r.R.throughput_mops;
          string_of_int r.R.stats.Ascy_mem.Sim.events.(Ascy_mem.Event.gc_pass);
          Rep.f2 (R.misses_per_op r);
        ])
      [ 8; 32; 128; 512 ]
  in
  Rep.table ~title:"GC threshold vs throughput and collection frequency"
    [ "threshold"; "Mops/s"; "gc passes"; "misses/op" ]
    rows
