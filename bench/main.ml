(* ASCYLIB-OCaml benchmark harness.

   Regenerates every table and figure of the paper's evaluation (see
   DESIGN.md's experiment index).  Simulated experiments run on the
   modeled platforms; the Bechamel suite measures real native
   per-operation cost.  ASCY_BENCH_MODE=quick|default|full scales the
   sweeps; ASCY_BENCH_ONLY=fig4 (comma-separated) selects experiments.

   Next to each experiment's text tables, a structured record of every
   run is written to BENCH_<exp>.json (see Ascy_harness.Results for the
   schema; ASCY_BENCH_OUT overrides the output directory). *)

module Results = Ascy_harness.Results
module J = Ascy_util.Json

let experiments =
  [
    ("table1", Exp_table1.run);
    ("micro", Micro.run);
    ("fig2", Exp_fig2.run);
    ("fig3", Exp_fig3.run);
    ("fig4", Exp_fig4.run);
    ("fig5", Exp_fig5.run);
    ("fig6", Exp_fig6.run);
    ("fig7", Exp_fig7.run);
    ("fig8", Exp_fig8.run);
    ("fig9", Exp_fig9.run);
    ("htm", Exp_htm.run);
    ("ssmem", Exp_ssmem.run);
    ("nonuniform", Exp_nonuniform.run);
  ]

let mode_name =
  match Bench_config.mode with
  | Bench_config.Quick -> "quick"
  | Bench_config.Default -> "default"
  | Bench_config.Full -> "full"

let () =
  let only =
    match Sys.getenv_opt "ASCY_BENCH_ONLY" with
    | None -> None
    | Some s -> Some (String.split_on_char ',' s)
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      match only with
      | Some names when not (List.mem name names) -> ()
      | _ ->
          let t = Unix.gettimeofday () in
          Results.with_sink ~meta:[ ("mode", J.String mode_name) ] name f;
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    experiments;
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
