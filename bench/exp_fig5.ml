(* Figure 5 (ASCY2): skip list, 1024 elements, 20% updates.

   Throughput, relative power, average update latency, update latency
   distribution, plus the paper's fraser vs fraser-opt extra-parse rates
   (0.38/1.07/1.82 % shrinking to 0.03/0.09/0.17 %). *)

open Ascylib
module W = Ascy_harness.Workload
module H = Ascy_util.Histogram
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let algos = [ "sl-async"; "sl-pugh"; "sl-herlihy"; "sl-fraser"; "sl-fraser-opt" ]

let run () =
  Bench_config.section "Figure 5 — ASCY2 on skip lists (1024 el, 20% upd)";
  let wl = W.make ~initial:(Bench_config.tree_elems 1024) ~update_pct:20 () in
  let platform = Ascy_platform.Platform.xeon20 in
  let threads = Bench_config.sweep_threads in
  let results =
    List.map
      (fun name ->
        let x = Registry.by_name name in
        ( name,
          List.map
            (fun n ->
              let r =
                R.run ~model:Bench_config.model ~latency:true x.Registry.maker ~platform ~nthreads:n ~workload:wl
                  ~ops_per_thread:Bench_config.ops_per_thread ()
              in
              Res.record_sim ~label:"sweep" r;
              r)
            threads ))
      algos
  in
  let last rs = List.nth rs (List.length rs - 1) in
  let base_power = (last (List.assoc "sl-async" results)).R.stats.Ascy_mem.Sim.power_w in
  let update_hist (r : R.result) =
    let h = H.create () in
    let h = H.merge h r.R.latencies.R.insert_ok in
    let h = H.merge h r.R.latencies.R.insert_fail in
    let h = H.merge h r.R.latencies.R.remove_ok in
    H.merge h r.R.latencies.R.remove_fail
  in
  let rows =
    List.map
      (fun (name, rs) ->
        let r = last rs in
        let uh = update_hist r in
        name
        :: List.map (fun r -> Rep.f2 r.R.throughput_mops) rs
        @ [
            Rep.ratio r.R.stats.Ascy_mem.Sim.power_w base_power;
            Rep.f1 (H.mean uh);
            Rep.percentiles uh;
            Rep.f2 (R.extra_parse_pct r);
          ])
      results
  in
  Rep.table
    ~title:"throughput, relative power, update latency (ns), extra parses (% of updates)"
    (("algorithm" :: List.map (Printf.sprintf "%dthr") threads)
    @ [ "power/async"; "upd ns"; "p1/25/50/75/99"; "extra-parse%" ])
    rows;
  (* the ASCY2 headline numbers at several thread counts *)
  let parse_rows =
    List.map
      (fun name ->
        let x = Registry.by_name name in
        name
        :: List.map
             (fun n ->
               let r =
                 R.run ~model:Bench_config.model x.Registry.maker ~platform ~nthreads:n ~workload:wl
                   ~ops_per_thread:Bench_config.ops_per_thread ()
               in
               Rep.f2 (R.extra_parse_pct r))
             threads)
      [ "sl-fraser"; "sl-fraser-opt" ]
  in
  Rep.table ~title:"extra parses (%): fraser restarts vs fraser-opt local retries"
    ("algorithm" :: List.map (Printf.sprintf "%dthr") threads)
    parse_rows
