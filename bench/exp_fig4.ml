(* Figure 4 (ASCY1): linked list, 1024 elements, 5% updates.

   (a) total throughput vs threads, (b) power relative to async,
   (c) average search latency, (d) search latency distribution
   (1/25/50/75/99 percentiles) — harris/michael vs harris-opt is the
   headline: removing stores/restarts from the search buys 10-30%. *)

open Ascylib
module W = Ascy_harness.Workload
module H = Ascy_util.Histogram
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let algos =
  [ "ll-async"; "ll-lazy"; "ll-pugh"; "ll-copy"; "ll-harris"; "ll-michael"; "ll-harris-opt" ]

let run () =
  Bench_config.section "Figure 4 — ASCY1 on linked lists (1024 el, 5% upd)";
  let wl = W.make ~initial:(Bench_config.list_elems 1024 * 2) ~update_pct:5 () in
  let platform = Ascy_platform.Platform.xeon20 in
  let threads = Bench_config.sweep_threads in
  let results =
    List.map
      (fun name ->
        let x = Registry.by_name name in
        let sweep =
          List.map
            (fun n ->
              let r =
                R.run ~model:Bench_config.model ~latency:true x.Registry.maker ~platform ~nthreads:n ~workload:wl
                  ~ops_per_thread:Bench_config.ops_per_thread ()
              in
              Res.record_sim ~label:"sweep" r;
              r)
            threads
        in
        (name, sweep))
      algos
  in
  let last rs = List.nth rs (List.length rs - 1) in
  let base_power = (last (List.assoc "ll-async" results)).R.stats.Ascy_mem.Sim.power_w in
  let rows =
    List.map
      (fun (name, rs) ->
        let r = last rs in
        let lat = r.R.latencies in
        let merged = H.create () in
        let merged = H.merge merged lat.R.search_hit in
        let merged = H.merge merged lat.R.search_miss in
        name
        :: List.map (fun r -> Rep.f2 r.R.throughput_mops) rs
        @ [
            Rep.ratio r.R.stats.Ascy_mem.Sim.power_w base_power;
            Rep.f1 (H.mean merged);
            Rep.percentiles merged;
          ])
      results
  in
  Rep.table ~title:"throughput (Mops/s per thread count), relative power, search latency (ns)"
    (("algorithm" :: List.map (Printf.sprintf "%dthr") threads)
    @ [ "power/async"; "search ns"; "p1/25/50/75/99" ])
    rows
