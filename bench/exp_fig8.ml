(* Figure 8: CLHT (lb and lf) vs the pugh hash table — 4096 elements, 20
   threads, update rates {0, 1, 20, 100} %, across platforms.  The
   paper's result: clht-lb +23% and clht-lf +13% over pugh on average,
   thanks to single-cache-line buckets and in-place updates. *)

open Ascylib
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let algos = [ "ht-pugh"; "ht-clht-lb"; "ht-clht-lf" ]
let rates = [ 0; 1; 20; 100 ]

let run () =
  Bench_config.section "Figure 8 — CLHT vs pugh hash table (4096 el, 20 threads)";
  let initial = Bench_config.tree_elems 4096 in
  List.iter
    (fun p ->
      let nthreads = min Bench_config.base_threads (Ascy_platform.Platform.hw_threads p) in
      let rows =
        List.map
          (fun name ->
            let x = Registry.by_name name in
            name
            :: List.concat_map
                 (fun rate ->
                   let wl = W.make ~initial ~update_pct:rate () in
                   let r1 =
                     R.run ~model:Bench_config.model x.Registry.maker ~platform:p ~nthreads:1 ~workload:wl
                       ~ops_per_thread:Bench_config.ops_per_thread ()
                   in
                   let r =
                     R.run ~model:Bench_config.model x.Registry.maker ~platform:p ~nthreads ~workload:wl
                       ~ops_per_thread:Bench_config.ops_per_thread ()
                   in
                   Res.record_sim ~label:(Printf.sprintf "%d%%upd" rate) r1;
                   Res.record_sim ~label:(Printf.sprintf "%d%%upd" rate) r;
                   [
                     Rep.f2 r.R.throughput_mops;
                     (if r1.R.throughput_mops > 0.0 then
                        Rep.f1 (r.R.throughput_mops /. r1.R.throughput_mops)
                      else "-");
                   ])
                 rates)
          algos
      in
      Rep.table
        ~title:(Printf.sprintf "%s — Mops/s and scalability per update rate" p.Ascy_platform.Platform.name)
        ("algorithm"
        :: List.concat_map (fun r -> [ Printf.sprintf "%d%% Mops" r; "scal" ]) rates)
        rows)
    Bench_config.platforms
