(* Figure 6 (ASCY3): hash table, 8192 elements/buckets, 10% updates.

   Each algorithm with and without read-only failures ("-no" = stores on
   unsuccessful updates).  Throughput, relative power, unsuccessful-update
   latency (the paper's 1.5-4x gap), and the update latency distribution. *)

open Ascylib
module W = Ascy_harness.Workload
module H = Ascy_util.Histogram
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let algos = [ "ht-lazy"; "ht-pugh"; "ht-copy"; "ht-java" ]

(* wrap a maker with read_only_fail forced off *)
module type MAKER = Ascy_core.Set_intf.MAKER

let no_rof (module A : MAKER) : (module MAKER) =
  (module functor (Mem : Ascy_mem.Memory.S) -> struct
    include A (Mem)

    let create ?hint ?read_only_fail:_ () = create ?hint ~read_only_fail:false ()
  end)

let run () =
  Bench_config.section "Figure 6 — ASCY3 on hash tables (8192 el, 10% upd)";
  let initial = Bench_config.tree_elems 8192 in
  let wl = W.make ~initial ~update_pct:10 () in
  let platform = Ascy_platform.Platform.xeon20 in
  let nthreads = Bench_config.base_threads in
  let async = Registry.by_name "ht-async" in
  let base =
    R.run ~model:Bench_config.model ~latency:true async.Registry.maker ~platform ~nthreads ~workload:wl
      ~ops_per_thread:Bench_config.ops_per_thread ()
  in
  let fail_hist (r : R.result) =
    let h = H.create () in
    let h = H.merge h r.R.latencies.R.insert_fail in
    H.merge h r.R.latencies.R.remove_fail
  in
  let ok_hist (r : R.result) =
    let h = H.create () in
    let h = H.merge h r.R.latencies.R.insert_ok in
    H.merge h r.R.latencies.R.remove_ok
  in
  let row name maker =
    let r =
      R.run ~model:Bench_config.model ~latency:true maker ~platform ~nthreads ~workload:wl
        ~ops_per_thread:Bench_config.ops_per_thread ()
    in
    (* [label] keeps the "-no" (read_only_fail=false) variants apart: the
       serialized algorithm name is the underlying implementation's *)
    Res.record_sim ~label:name r;
    [
      name;
      Rep.f2 r.R.throughput_mops;
      Rep.ratio r.R.stats.Ascy_mem.Sim.power_w base.R.stats.Ascy_mem.Sim.power_w;
      Rep.f1 (H.mean (fail_hist r));
      Rep.f1 (H.mean (ok_hist r));
      Rep.percentiles (ok_hist r);
    ]
  in
  let rows =
    row "ht-async" async.Registry.maker
    :: List.concat_map
         (fun name ->
           let x = Registry.by_name name in
           [ row name x.Registry.maker; row (name ^ "-no") (no_rof x.Registry.maker) ])
         algos
  in
  Rep.table
    ~title:
      (Printf.sprintf
         "read-only fail on/off at %d threads: throughput, power, unsuccessful vs successful \
          update latency (ns)"
         nthreads)
    [ "algorithm"; "Mops/s"; "power/async"; "fail-upd ns"; "ok-upd ns"; "ok p1/25/50/75/99" ]
    rows
