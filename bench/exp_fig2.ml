(* Figure 2: cross-platform throughput of every CSDS.

   (a) thread sweep at average contention (per family, on the sweep
       platform) with the scalability ratio versus one thread;
   (b) high- and low-contention points at 20 threads across platforms.

   Structure sizes are scaled by the bench mode; shapes, orderings and
   crossovers are what is compared against the paper. *)

open Ascylib
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let families =
  [
    (Ascy_core.Ascy.Linked_list, "Linked lists (Fig. 2a)");
    (Ascy_core.Ascy.Hash_table, "Hash tables (Fig. 2b)");
    (Ascy_core.Ascy.Skip_list, "Skip lists (Fig. 2c)");
    (Ascy_core.Ascy.Bst, "BSTs (Fig. 2d)");
  ]

let elems family n =
  match family with
  | Ascy_core.Ascy.Linked_list -> Bench_config.list_elems n
  | _ -> Bench_config.tree_elems n

let workload family ~initial ~update_pct =
  W.make ~initial:(elems family initial) ~update_pct ()

let entries family =
  (* drop the second async BST baseline to keep the tables compact *)
  List.filter (fun (x : Registry.entry) -> x.Registry.name <> "bst-async-int") (Registry.by_family family)

let sweep family title =
  let wl = workload family ~initial:4096 ~update_pct:10 in
  let threads = Bench_config.sweep_threads in
  let platform = Ascy_platform.Platform.xeon20 in
  let rows =
    List.map
      (fun (x : Registry.entry) ->
        let tputs =
          List.map
            (fun n ->
              let r =
                R.run ~model:Bench_config.model ~latency:true x.Registry.maker ~platform ~nthreads:n ~workload:wl
                  ~ops_per_thread:Bench_config.ops_per_thread ()
              in
              Res.record_sim ~label:"sweep-avg-contention" r;
              r.R.throughput_mops)
            threads
        in
        let t1 = List.hd tputs and tn = List.nth tputs (List.length tputs - 1) in
        x.Registry.name :: List.map Rep.f2 tputs
        @ [ (if t1 > 0.0 then Rep.f1 (tn /. t1) else "-") ])
      (entries family)
  in
  Rep.table ~title:(title ^ " — avg contention (10% upd), Xeon20, Mops/s")
    (("algorithm" :: List.map (fun n -> Printf.sprintf "%dthr" n) threads) @ [ "scal" ])
    rows

let contention family title ~initial ~update_pct label =
  let wl = workload family ~initial ~update_pct in
  let rows =
    List.map
      (fun (x : Registry.entry) ->
        x.Registry.name
        :: List.map
             (fun p ->
               let nthreads = min Bench_config.base_threads (Ascy_platform.Platform.hw_threads p) in
               let r =
                 R.run ~model:Bench_config.model ~latency:true x.Registry.maker ~platform:p ~nthreads ~workload:wl
                   ~ops_per_thread:Bench_config.ops_per_thread ()
               in
               Res.record_sim ~label:(label ^ "-contention") r;
               Rep.f2 r.R.throughput_mops)
             Bench_config.platforms)
      (entries family)
  in
  Rep.table
    ~title:(Printf.sprintf "%s — %s contention (%d el, %d%% upd), 20 threads, Mops/s" title label
              (elems family initial) update_pct)
    ("algorithm" :: List.map (fun p -> p.Ascy_platform.Platform.name) Bench_config.platforms)
    rows

let run () =
  Bench_config.section "Figure 2 — cross-platform evaluation of all CSDSs";
  List.iter
    (fun (family, title) ->
      sweep family title;
      contention family title ~initial:512 ~update_pct:25 "high";
      contention family title ~initial:16384 ~update_pct:10 "low")
    families
