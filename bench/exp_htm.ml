(* §4 "Hardware considerations": fine-tuning with HTM.

   The paper reports that TSX-style tuning moves throughput by ±5% on a
   4-core Haswell.  We reproduce the experiment on the Haswell model:
   CLHT-LB with transactional lock elision on its update path versus the
   plain lock path, across update rates. *)

open Ascylib
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let clht = Registry.by_name "ht-clht-lb"

let run_one ~htm ~rate ~nthreads =
  Ascy_core.Config.clht_htm := htm;
  Fun.protect
    ~finally:(fun () -> Ascy_core.Config.clht_htm := false)
    (fun () ->
      let wl = W.make ~initial:(Bench_config.tree_elems 2048) ~update_pct:rate () in
      R.run ~model:Bench_config.model clht.Registry.maker ~platform:Ascy_platform.Platform.haswell ~nthreads ~workload:wl
        ~ops_per_thread:(2 * Bench_config.ops_per_thread) ())

let run () =
  Bench_config.section "HTM — TSX-style lock elision on CLHT-LB (Haswell model, 8 hw threads)";
  let nthreads = 8 in
  let rows =
    List.map
      (fun rate ->
        let plain = run_one ~htm:false ~rate ~nthreads in
        let elided = run_one ~htm:true ~rate ~nthreads in
        Res.record_sim ~label:(Printf.sprintf "lock/%d%%upd" rate) plain;
        Res.record_sim ~label:(Printf.sprintf "htm-elided/%d%%upd" rate) elided;
        [
          Printf.sprintf "%d%%" rate;
          Rep.f2 plain.R.throughput_mops;
          Rep.f2 elided.R.throughput_mops;
          Printf.sprintf "%+.1f%%"
            (100.0 *. (elided.R.throughput_mops -. plain.R.throughput_mops)
            /. plain.R.throughput_mops);
        ])
      [ 1; 10; 20; 50; 100 ]
  in
  Rep.table ~title:"update rate vs throughput, plain lock vs elided (Mops/s)"
    [ "updates"; "lock"; "htm-elided"; "delta" ]
    rows
