(* Global scaling knobs for the benchmark harness.

   The simulator executes every shared-memory access as an effect, so a
   full paper-sized sweep (5-second runs, 11 repetitions, 6 platforms) is
   not a realistic default.  Modes scale structure sizes and op counts
   while preserving the workload *shapes*:

   - quick:   CI-sized, ~2-4 minutes total
   - default: ~10-15 minutes
   - full:    closer to paper-sized structures (hours)

   Select with ASCY_BENCH_MODE=quick|default|full. *)

type mode = Quick | Default | Full

let mode =
  match Sys.getenv_opt "ASCY_BENCH_MODE" with
  | Some "quick" -> Quick
  | Some "full" -> Full
  | _ -> Default

(* Coherence cost model for every simulated run in the sweep.  Select
   with ASCY_BENCH_MODEL=mesi|moesi|flat (default mesi).  "flat" prices
   every access as an L1 hit — useless for measurement, but it turns the
   sweep into a fast functional smoke test of the whole harness. *)
let model =
  match Sys.getenv_opt "ASCY_BENCH_MODEL" with
  | Some m -> Ascy_mem.Sim.model_of_name m
  | None -> Ascy_mem.Sim.default_model

let scale n = match mode with Quick -> max 1 (n / 8) | Default -> n | Full -> n * 4

(* Linked lists cost O(size) simulated accesses per op: scale their
   element counts down harder than the log-depth structures. *)
let list_elems n = match mode with Quick -> max 16 (n / 16) | Default -> max 32 (n / 8) | Full -> n

let tree_elems n = match mode with Quick -> max 64 (n / 4) | Default -> n | Full -> n

let ops_per_thread = match mode with Quick -> 60 | Default -> 150 | Full -> 1000

let sweep_threads = match mode with Quick -> [ 1; 10; 20 ] | Default -> [ 1; 5; 10; 20 ] | Full -> [ 1; 5; 10; 15; 20; 30; 40 ]

let platforms =
  match mode with
  | Quick -> [ Ascy_platform.Platform.xeon20 ]
  | Default ->
      [ Ascy_platform.Platform.opteron; Ascy_platform.Platform.xeon20; Ascy_platform.Platform.t44 ]
  | Full -> Ascy_platform.Platform.main_five

let base_threads = 20

let section title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n"
