(* Figure 3: cache misses per operation versus scalability, linked
   lists, 4096 elements (scaled), 10% updates, 20 threads.

   The paper's point: the fewer cache misses per operation an algorithm
   generates, the better it scales — async fewest, coupling/copy worst. *)

open Ascylib
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let run () =
  Bench_config.section "Figure 3 — cache misses/op vs scalability (linked lists)";
  let wl = W.make ~initial:(Bench_config.list_elems 4096) ~update_pct:10 () in
  let platform = Ascy_platform.Platform.xeon20 in
  let rows =
    List.map
      (fun (x : Registry.entry) ->
        let r1 =
          R.run ~model:Bench_config.model x.Registry.maker ~platform ~nthreads:1 ~workload:wl
            ~ops_per_thread:Bench_config.ops_per_thread ()
        in
        let r20 =
          R.run ~model:Bench_config.model x.Registry.maker ~platform ~nthreads:20 ~workload:wl
            ~ops_per_thread:Bench_config.ops_per_thread ()
        in
        Res.record_sim ~label:"baseline-1thr" r1;
        Res.record_sim ~label:"contended-20thr" r20;
        let scal =
          if r1.R.throughput_mops > 0.0 then r20.R.throughput_mops /. r1.R.throughput_mops else 0.0
        in
        [ x.Registry.name; Rep.f2 (R.misses_per_op r20); Rep.f1 scal; Rep.f2 r20.R.throughput_mops ])
      (Registry.by_family Ascy_core.Ascy.Linked_list)
  in
  Rep.table ~title:"misses/op and scalability at 20 threads (Xeon20)"
    [ "algorithm"; "misses/op"; "scalability"; "Mops/s" ]
    rows
