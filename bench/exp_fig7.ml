(* Figure 7 (ASCY4): BSTs, 2048 elements, 20% updates.

   Throughput, relative power, average update latency, successful-op
   latency distribution, and the atomic-operations-per-successful-update
   count (natarajan ~2 vs >3 for the helping/locking designs). *)

open Ascylib
module W = Ascy_harness.Workload
module H = Ascy_util.Histogram
module R = Ascy_harness.Sim_run
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results

let algos =
  [
    "bst-async-int";
    "bst-async-ext";
    "bst-bronson";
    "bst-drachsler";
    "bst-ellen";
    "bst-howley";
    "bst-natarajan";
    "bst-tk";
  ]

let run () =
  Bench_config.section "Figure 7 — ASCY4 on BSTs (2048 el, 20% upd)";
  let wl = W.make ~initial:(Bench_config.tree_elems 2048) ~update_pct:20 () in
  let platform = Ascy_platform.Platform.xeon20 in
  let threads = Bench_config.sweep_threads in
  let results =
    List.map
      (fun name ->
        let x = Registry.by_name name in
        ( name,
          List.map
            (fun n ->
              let r =
                R.run ~model:Bench_config.model ~latency:true x.Registry.maker ~platform ~nthreads:n ~workload:wl
                  ~ops_per_thread:Bench_config.ops_per_thread ()
              in
              Res.record_sim ~label:"sweep" r;
              r)
            threads ))
      algos
  in
  let last rs = List.nth rs (List.length rs - 1) in
  let base_power = (last (List.assoc "bst-async-ext" results)).R.stats.Ascy_mem.Sim.power_w in
  let ok_hist (r : R.result) =
    let h = H.create () in
    let h = H.merge h r.R.latencies.R.search_hit in
    let h = H.merge h r.R.latencies.R.insert_ok in
    H.merge h r.R.latencies.R.remove_ok
  in
  let rows =
    List.map
      (fun (name, rs) ->
        let r = last rs in
        name
        :: List.map (fun r -> Rep.f2 r.R.throughput_mops) rs
        @ [
            Rep.ratio r.R.stats.Ascy_mem.Sim.power_w base_power;
            Rep.f2 (R.atomics_per_update r);
            Rep.percentiles (ok_hist r);
          ])
      results
  in
  Rep.table
    ~title:"throughput, relative power, atomics per successful update, successful-op latency (ns)"
    (("algorithm" :: List.map (Printf.sprintf "%dthr") threads)
    @ [ "power/async"; "atomics/upd"; "ok p1/25/50/75/99" ])
    rows
