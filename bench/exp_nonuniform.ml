(* §4's brief remark: "We briefly experiment with non-uniform workloads
   ... such as those with update spikes and continuously increasing
   structure size.  We notice that our observations are valid in these
   scenarios as well."

   Two scenarios on the hash tables (the family where skew bites
   hardest):
   - skewed popularity: 80% of operations on a small hot set;
   - growth: insert-heavy workload that doubles the structure size.
   Check: the ASCY ordering (async >= clht >= pugh >= tbb/coupling) is
   preserved. *)

open Ascylib
module W = Ascy_harness.Workload
module R = Ascy_harness.Sim_run
module Sim = Ascy_mem.Sim
module P = Ascy_platform.Platform
module Rep = Ascy_harness.Report
module Res = Ascy_harness.Results
module J = Ascy_util.Json

let algos = [ "ht-async"; "ht-clht-lb"; "ht-pugh"; "ht-java"; "ht-tbb" ]

(* A custom driver: Sim_run covers uniform workloads; spikes and skew
   need their own loop. *)
let run_custom name ~nthreads ~initial ~body_gen =
  let entry = Registry.by_name name in
  let module A = (val entry.Registry.maker) in
  let module M = A (Sim.Mem) in
  Sim.with_sim ~seed:3 ~platform:P.xeon20 ~nthreads (fun sim ->
      let t = M.create ~hint:initial () in
      let rng0 = Ascy_util.Xorshift.create 17 in
      let filled = ref 0 in
      while !filled < initial do
        if M.insert t (1 + Ascy_util.Xorshift.below rng0 (2 * initial)) 0 then incr filled
      done;
      Sim.warm sim;
      let ops = Array.make nthreads 0 in
      let bodies =
        Array.init nthreads (fun tid () ->
            ops.(tid) <-
              body_gen tid ~search:(fun k -> ignore (M.search t k))
                ~insert:(fun k -> ignore (M.insert t k tid))
                ~remove:(fun k -> ignore (M.remove t k))
                ~op_done:(fun () -> M.op_done t))
      in
      let makespan = Sim.run sim bodies in
      let stats = Sim.stats sim ~makespan in
      let total = Array.fold_left ( + ) 0 ops in
      (float_of_int total /. stats.Sim.seconds /. 1e6, M.size t))

let skewed tid ~search ~insert ~remove ~op_done =
  let w = W.make ~initial:4096 ~update_pct:20 () in
  let skew = { W.hot_keys = 64; hot_pct = 80 } in
  let rng = Ascy_util.Xorshift.create (tid + 41) in
  let n = Bench_config.ops_per_thread * 2 in
  for _ = 1 to n do
    let k = W.pick_key_skewed w skew rng in
    (match W.pick_op w rng with
    | W.Search -> search k
    | W.Insert -> insert k
    | W.Remove -> remove k);
    op_done ()
  done;
  n

let growth tid ~search ~insert ~remove:_ ~op_done =
  (* 60% inserts over an ever-widening range: size grows continuously *)
  let rng = Ascy_util.Xorshift.create (tid + 43) in
  let n = Bench_config.ops_per_thread * 2 in
  for i = 1 to n do
    let range = 8192 + (i * 16) in
    let k = 1 + Ascy_util.Xorshift.below rng range in
    if Ascy_util.Xorshift.below rng 100 < 60 then insert k else search k;
    op_done ()
  done;
  n

let run () =
  Bench_config.section "Non-uniform workloads (4's remark): skew and growth";
  let rows =
    List.map
      (fun name ->
        let skew_tput, _ = run_custom name ~nthreads:20 ~initial:4096 ~body_gen:skewed in
        let grow_tput, final = run_custom name ~nthreads:20 ~initial:4096 ~body_gen:growth in
        (* custom drivers bypass Sim_run, so serialize a reduced record *)
        List.iter
          (fun (label, tput, size) ->
            Res.record
              (J.Obj
                 [
                   ("label", J.String label);
                   ("kind", J.String "custom");
                   ("algorithm", J.String name);
                   ("platform", J.String P.xeon20.P.name);
                   ("nthreads", J.Int 20);
                   ("throughput_mops", J.Float tput);
                   ("final_size", match size with Some s -> J.Int s | None -> J.Null);
                 ]))
          [ ("skewed-80/20", skew_tput, None); ("growing", grow_tput, Some final) ];
        [ name; Rep.f2 skew_tput; Rep.f2 grow_tput; string_of_int final ])
      algos
  in
  Rep.table ~title:"80/20-skewed and continuously-growing workloads, 20 threads (Xeon20)"
    [ "algorithm"; "skewed Mops/s"; "growing Mops/s"; "final size" ]
    rows
